"""Convolution engines: offset-sliced GEMM (fast) and im2col / col2im (reference).

Convolution is expressed as matrix multiplication.  The reference engine
unrolls input windows into columns (``im2col``), multiplies by the flattened
filter bank, and re-folds columns back into images on the gradient path
(``col2im``).  It is kept as the ground truth for gradient-parity tests, but
it pins an ``O(k²)``-inflated matrix per layer when used for training.

The fast engine (``conv_forward_offset`` / ``conv_backward_offset``) works
per kernel offset instead: the forward assembles the unrolled matrix into a
shared scratch workspace with one contiguous slice copy per offset (memcpy
speed) and releases it after a single batched GEMM; ``dW`` (plus the fused
bias gradient) is one offset-ordered GEMM against the *padded input* — the
only tensor a training step retains — and ``dX`` is a stride-1 transposed
convolution, or a per-offset scatter-add into the padded gradient buffer for
strided convolutions.  Nothing ``k²``-sized survives the step, so per-layer
cached bytes shrink by ~``k²``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "pad_input",
    "conv_forward_offset",
    "conv_backward_offset",
]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ValueError(f"non-positive conv output size for size={size}, kernel={kernel}, stride={stride}, pad={pad}")
    return out


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Unroll sliding windows of ``x`` into a 2-D matrix.

    Parameters
    ----------
    x:
        ``(N, C, H, W)`` input batch.
    kernel_h, kernel_w, stride, pad:
        Convolution geometry (symmetric zero padding).

    Returns
    -------
    numpy.ndarray
        ``(N * out_h * out_w, C * kernel_h * kernel_w)`` matrix whose rows are
        the flattened receptive fields.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> rows ordered batch-major, then spatial.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel_h * kernel_w)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold an im2col matrix back into an image batch, summing overlaps.

    This is the adjoint of :func:`im2col` and therefore exactly the operation
    needed to back-propagate through a convolution's input.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    expected_rows = n * out_h * out_w
    expected_cols = c * kernel_h * kernel_w
    if cols.shape != (expected_rows, expected_cols):
        raise ValueError(f"cols has shape {cols.shape}, expected {(expected_rows, expected_cols)}")

    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    reshaped = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    # reshaped: (N, C, kh, kw, out_h, out_w); scatter-add each kernel offset.
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += reshaped[:, :, i, j, :, :]

    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


# --------------------------------------------------------------------------- #
# Offset-sliced GEMM engine
# --------------------------------------------------------------------------- #
#: Shared scratch for the transient unrolled-input matrices.  A fresh
#: multi-megabyte ``np.empty`` per conv call costs more in page faults than
#: the slice copies that fill it; one flat buffer sized to the largest layer
#: amortises that across the whole network.  Each engine call carves a view,
#: uses it for exactly one GEMM, and is done with it before any other call
#: can run (the engine is single-threaded per process; forked workers get
#: their own copy), so no two live tensors ever alias the scratch.
_SCRATCH: dict[str, np.ndarray] = {}


def scratch_buffer(shape: tuple[int, ...], slot: str = "cols") -> np.ndarray:
    """A float32 view of the named workspace slot, grown to fit ``shape``.

    Callers must be done with a slot's view before anything else can request
    the same slot — the engine guarantees this by finishing each GEMM before
    the next layer call runs.
    """
    size = 1
    for dim in shape:
        size *= dim
    flat = _SCRATCH.get(slot)
    if flat is None or flat.size < size:
        flat = np.empty(size, dtype=np.float32)
        _SCRATCH[slot] = flat
    return flat[:size].reshape(shape)


def release_workspace() -> None:
    """Drop the shared scratch buffers (for tests and memory accounting)."""
    _SCRATCH.clear()


def workspace_nbytes() -> int:
    """Current total size of the shared scratch buffers in bytes."""
    return sum(flat.nbytes for flat in _SCRATCH.values())


def pad_input(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the spatial axes of an ``(N, C, H, W)`` batch (no-op for pad 0)."""
    if pad <= 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")


def conv_forward_offset(
    xp: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Convolve a pre-padded ``(N, C, Hp, Wp)`` batch with one GEMM.

    The unrolled-input matrix is assembled in ``(N, k*k*C, out_h, out_w)``
    layout with one contiguous slice copy per kernel offset (no transposes),
    contracted against the ``(offset, channel)``-ordered filter bank by a
    batched GEMM whose ``(N, F, out_h*out_w)`` result *is* the output layout
    — and released; unlike :func:`im2col` output it is never cached.
    """
    n, c = xp.shape[0], xp.shape[1]
    f, _, kh, kw = weight.shape
    if kh == 1 and kw == 1 and stride == 1:
        # Pointwise convolution: the input already is the unrolled matrix.
        cols = xp if xp.flags.c_contiguous else np.ascontiguousarray(xp)
    else:
        cols = scratch_buffer((n, kh * kw * c, out_h, out_w))
        for i in range(kh):
            for j in range(kw):
                base = (i * kw + j) * c
                cols[:, base : base + c] = xp[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride]
    w_mat = weight.transpose(0, 2, 3, 1).reshape(f, -1)
    out = np.matmul(w_mat, cols.reshape(n, kh * kw * c, out_h * out_w))
    if bias is not None:
        out += bias[:, None]
    return out.reshape(n, f, out_h, out_w)


def conv_backward_offset(
    xp: np.ndarray,
    weight: np.ndarray,
    grad_output: np.ndarray,
    stride: int,
    need_input_grad: bool = True,
    need_bias_grad: bool = False,
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`conv_forward_offset` from the padded input alone.

    Returns ``(grad_padded_input, grad_weight, grad_bias)``.  ``dW`` is one
    offset-ordered GEMM against the re-assembled unrolled input; with
    ``need_bias_grad=True`` a ones-channel is appended to that matrix so the
    same GEMM also reduces ``dB`` (no separate pass over the gradient).
    ``dX`` is a stride-1 transposed convolution (flipped filters over the
    padded output gradient) or, for strided convolutions, a per-offset
    scatter-add into the padded gradient buffer — the adjoint of the forward
    slice copies.  There is no ``col2im`` re-fold and nothing ``k²``-sized
    outlives the call.  With ``need_input_grad=False`` the ``dX`` contraction
    is skipped entirely and ``None`` is returned in its place (first-layer
    optimisation).
    """
    f, c, kh, kw = weight.shape
    n, oh, ow = grad_output.shape[0], grad_output.shape[2], grad_output.shape[3]
    ell = oh * ow
    gb = grad_output.reshape(n, f, ell)

    # dW (and optionally dB): re-assemble the offset-ordered unrolled input
    # (slice copies, released on return) and contract it against the gradient
    # with one batched GEMM reduced over the batch axis.
    rows = kh * kw * c + (1 if need_bias_grad else 0)
    cols = scratch_buffer((n, rows, oh, ow))
    for i in range(kh):
        for j in range(kw):
            base = (i * kw + j) * c
            cols[:, base : base + c] = xp[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
    if need_bias_grad:
        cols[:, -1].fill(1.0)
    dw_ext = np.matmul(cols.reshape(n, rows, ell), gb.transpose(0, 2, 1)).sum(axis=0)
    db = dw_ext[-1].copy() if need_bias_grad else None
    dw = dw_ext[: kh * kw * c].reshape(kh, kw, c, f)
    dw = np.ascontiguousarray(dw.transpose(3, 2, 0, 1))

    if not need_input_grad:
        return None, dw, db

    if stride == 1:
        # dX is itself a stride-1 convolution: correlate the (k-1)-padded
        # output gradient with the spatially-flipped, channel-swapped filters.
        # One slice-copy batched GEMM, no scatter-add — the layout every
        # U-Net conv uses.
        w_flip = np.ascontiguousarray(weight.transpose(1, 0, 2, 3)[:, :, ::-1, ::-1])
        hp, wp = xp.shape[2], xp.shape[3]
        if kh == 1 and kw == 1:
            gp = grad_output
        else:
            # Padded gradient lives in its own workspace slot: it must survive
            # the "cols" assembly inside the transposed convolution below.
            gp = scratch_buffer((n, f, oh + 2 * (kh - 1), ow + 2 * (kw - 1)), slot="pad")
            gp.fill(0.0)
            gp[:, :, kh - 1 : kh - 1 + oh, kw - 1 : kw - 1 + ow] = grad_output
        return conv_forward_offset(gp, w_flip, None, 1, hp, wp), dw, db

    # General stride: scatter-add each offset's contraction back into the
    # padded gradient buffer (the adjoint of the forward slice copies).
    w_mat = weight.transpose(2, 3, 1, 0).reshape(kh * kw * c, f)
    grad_cols = np.matmul(w_mat, gb)  # (N, k*k*C, out_h*out_w)
    dxp = np.zeros_like(xp)
    for i in range(kh):
        for j in range(kw):
            base = (i * kw + j) * c
            dst = dxp[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
            dst += grad_cols[:, base : base + c].reshape(n, c, oh, ow)
    return dxp, dw, db
