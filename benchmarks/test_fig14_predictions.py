"""Figure 14 — qualitative U-Net predictions against the ground truth.

Paper figure: an original Sentinel-2 tile, its manual ground truth, and the
U-Net-Man / U-Net-Auto predictions look nearly identical.  Quantitatively,
this benchmark classifies a fresh held-out scene with both trained models
(via the full inference workflow of Figure 9: tile → filter → predict →
stitch) and reports their agreement with the scene's ground truth and with
each other.
"""

from __future__ import annotations

import pytest

from repro.data import SceneSpec, synthesize_scene
from repro.metrics import accuracy_score
from repro.unet import InferenceConfig, SceneClassifier

from conftest import print_rows


@pytest.mark.benchmark(group="fig14")
def test_fig14_scene_predictions(benchmark, accuracy_experiment):
    tile_size = accuracy_experiment.config.tile_size
    scene = synthesize_scene(
        SceneSpec(height=4 * tile_size, width=4 * tile_size, cloud_coverage=0.3, seed=2024)
    )

    man_classifier = SceneClassifier(
        model=accuracy_experiment.unet_man,
        config=InferenceConfig(tile_size=tile_size, apply_cloud_filter=True, batch_size=8),
    )
    auto_classifier = SceneClassifier(
        model=accuracy_experiment.unet_auto,
        config=InferenceConfig(tile_size=tile_size, apply_cloud_filter=True, batch_size=8),
    )

    man_prediction = man_classifier.classify_scene(scene.rgb)
    auto_prediction = benchmark.pedantic(auto_classifier.classify_scene, args=(scene.rgb,), rounds=1, iterations=1)

    man_acc = accuracy_score(scene.class_map, man_prediction)
    auto_acc = accuracy_score(scene.class_map, auto_prediction)
    agreement = accuracy_score(man_prediction, auto_prediction)
    print_rows(
        "Fig 14: whole-scene inference on a held-out cloudy scene",
        [
            {"model": "U-Net-Man", "accuracy_pct": round(man_acc * 100, 2)},
            {"model": "U-Net-Auto", "accuracy_pct": round(auto_acc * 100, 2)},
            {"model": "Man vs Auto agreement", "accuracy_pct": round(agreement * 100, 2)},
        ],
    )

    # Shape: both models recover most of the scene and broadly agree with each other.
    assert man_acc > 0.7
    assert auto_acc > 0.7
    assert agreement > 0.7
