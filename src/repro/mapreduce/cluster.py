"""Simulated Google Cloud Dataproc cluster for the Table II scaling sweep.

The paper measures PySpark auto-labeling on a 4-node Dataproc cluster
(1 master + 3 workers, 4 cores each).  That hardware is not available here,
so the sweep over (executors × cores) is regenerated with an explicit,
calibrated cost model:

* **Load phase** — reading the S2 archive into the distributed dataframe.
  Modelled with Amdahl's law: a per-image read cost that parallelises over
  all execution slots plus a serial driver fraction (scheduling, metadata,
  driver-side concatenation).  The paper's own load column follows Amdahl
  with a serial fraction of about 5 %, which is the default here.
* **Map phase** — registering the auto-label UDF transformation.  Lazy in
  Spark and in sparklite, hence a small constant.
* **Reduce phase** — executing the UDF over every image and collecting the
  results.  Pixel-independent work that scales essentially linearly with
  the number of slots, with a small per-node scheduling overhead.

The model's defaults are calibrated on the paper's 4224-image workload so
that the 1-executor/1-core row matches Table II's baseline; the *shape* of
the predicted sweep (who wins, by how much, where returns diminish) is the
reproduction target.  The same code can also drive the real local engine
(:class:`~repro.mapreduce.dataset.SparkLiteContext`) to obtain measured
times for however many local cores exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClusterShape", "GCDClusterModel", "PAPER_TABLE2_ROWS", "paper_table2"]


#: Verbatim rows of the paper's Table II (for side-by-side reporting).
PAPER_TABLE2_ROWS: list[dict] = [
    {"executors": 1, "cores": 1, "load_time_s": 108.0, "map_time_s": 0.4, "reduce_time_s": 390.0},
    {"executors": 1, "cores": 2, "load_time_s": 58.0, "map_time_s": 0.4, "reduce_time_s": 174.0},
    {"executors": 1, "cores": 4, "load_time_s": 33.0, "map_time_s": 0.3, "reduce_time_s": 72.0},
    {"executors": 2, "cores": 1, "load_time_s": 56.0, "map_time_s": 0.3, "reduce_time_s": 156.0},
    {"executors": 2, "cores": 2, "load_time_s": 31.0, "map_time_s": 0.3, "reduce_time_s": 84.0},
    {"executors": 2, "cores": 4, "load_time_s": 19.0, "map_time_s": 0.3, "reduce_time_s": 41.0},
    {"executors": 4, "cores": 1, "load_time_s": 31.0, "map_time_s": 0.2, "reduce_time_s": 78.0},
    {"executors": 4, "cores": 2, "load_time_s": 17.0, "map_time_s": 0.2, "reduce_time_s": 39.0},
    {"executors": 4, "cores": 4, "load_time_s": 12.0, "map_time_s": 0.3, "reduce_time_s": 24.0},
]


def paper_table2() -> list[dict]:
    """Paper Table II with the derived speedup columns filled in."""
    base_load = PAPER_TABLE2_ROWS[0]["load_time_s"]
    base_reduce = PAPER_TABLE2_ROWS[0]["reduce_time_s"]
    rows = []
    for row in PAPER_TABLE2_ROWS:
        out = dict(row)
        out["speedup_load"] = round(base_load / row["load_time_s"], 2)
        out["speedup_reduce"] = round(base_reduce / row["reduce_time_s"], 2)
        rows.append(out)
    return rows


@dataclass(frozen=True)
class ClusterShape:
    """One cluster configuration of the sweep."""

    executors: int
    cores_per_executor: int

    def __post_init__(self) -> None:
        if self.executors < 1 or self.cores_per_executor < 1:
            raise ValueError("executors and cores_per_executor must be >= 1")

    @property
    def slots(self) -> int:
        """Total parallel execution slots."""
        return self.executors * self.cores_per_executor


@dataclass
class GCDClusterModel:
    """Calibrated cost model of the paper's Dataproc cluster.

    Parameters
    ----------
    num_images:
        Number of S2 tiles in the workload (4224 in the paper).
    load_cost_per_image:
        Seconds to read + decode one tile on one core.
    label_cost_per_image:
        Seconds to cloud/shadow-filter + colour-segment one tile on one core.
    load_serial_fraction:
        Amdahl serial fraction of the load phase (driver-side work).
    reduce_serial_fraction:
        Amdahl serial fraction of the reduce phase (result collection).
    map_registration_time:
        Constant cost of registering the lazy UDF transformation.
    scheduler_overhead_per_executor:
        Per-executor task-scheduling overhead added to each phase.
    """

    num_images: int = 4224
    load_cost_per_image: float = 108.0 / 4224.0
    label_cost_per_image: float = 390.0 / 4224.0
    load_serial_fraction: float = 0.052
    reduce_serial_fraction: float = 0.0
    map_registration_time: float = 0.3
    scheduler_overhead_per_executor: float = 0.05

    def __post_init__(self) -> None:
        if self.num_images < 1:
            raise ValueError("num_images must be >= 1")
        for name in ("load_serial_fraction", "reduce_serial_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    # ------------------------------------------------------------------ #
    def _amdahl_time(self, serial_time: float, serial_fraction: float, slots: int) -> float:
        return serial_time * (serial_fraction + (1.0 - serial_fraction) / slots)

    def load_time(self, shape: ClusterShape) -> float:
        """Predicted wall time of loading the image archive into the dataframe."""
        serial = self.num_images * self.load_cost_per_image
        return (
            self._amdahl_time(serial, self.load_serial_fraction, shape.slots)
            + self.scheduler_overhead_per_executor * shape.executors
        )

    def map_time(self, shape: ClusterShape) -> float:
        """Predicted wall time of registering the (lazy) auto-label map transformation."""
        return self.map_registration_time

    def reduce_time(self, shape: ClusterShape) -> float:
        """Predicted wall time of executing the UDF and collecting the labels."""
        serial = self.num_images * self.label_cost_per_image
        return (
            self._amdahl_time(serial, self.reduce_serial_fraction, shape.slots)
            + self.scheduler_overhead_per_executor * shape.executors
        )

    # ------------------------------------------------------------------ #
    def predict_row(self, shape: ClusterShape) -> dict:
        """One Table II row (times + speedups relative to the 1×1 configuration)."""
        base = ClusterShape(1, 1)
        load = self.load_time(shape)
        red = self.reduce_time(shape)
        return {
            "executors": shape.executors,
            "cores": shape.cores_per_executor,
            "load_time_s": round(load, 4),
            "map_time_s": round(self.map_time(shape), 4),
            "reduce_time_s": round(red, 4),
            "speedup_load": round(self.load_time(base) / load, 2),
            "speedup_reduce": round(self.reduce_time(base) / red, 2),
        }

    def sweep(self, shapes: "list[ClusterShape] | None" = None) -> list[dict]:
        """Predict the full Table II sweep (default: the paper's 9 configurations)."""
        if shapes is None:
            shapes = [ClusterShape(e, c) for e in (1, 2, 4) for c in (1, 2, 4)]
        return [self.predict_row(s) for s in shapes]

    @classmethod
    def calibrated_from_measurement(
        cls,
        num_images: int,
        measured_load_time: float,
        measured_reduce_time: float,
        **overrides,
    ) -> "GCDClusterModel":
        """Build a model whose 1×1 row matches a locally measured single-core run.

        This ties the simulated cluster to the real per-image cost of *this*
        repository's filter + labeler instead of the paper's absolute numbers.
        """
        if measured_load_time <= 0 or measured_reduce_time <= 0:
            raise ValueError("measured times must be positive")
        # Scheduling overhead scales with the workload: for tiny local
        # measurements the paper-scale default (50 ms per executor) would
        # otherwise dominate and invert the scaling trend.
        overrides.setdefault(
            "scheduler_overhead_per_executor", min(0.05, 0.005 * measured_reduce_time)
        )
        return cls(
            num_images=num_images,
            load_cost_per_image=measured_load_time / num_images,
            label_cost_per_image=measured_reduce_time / num_images,
            **overrides,
        )

    def relative_error_vs_paper(self) -> float:
        """Mean relative error of the predicted sweep against the paper's Table II.

        Only meaningful for the default (paper-calibrated) parameters; used by
        the benchmark harness to quantify how well the model shape matches.
        """
        predicted = {(r["executors"], r["cores"]): r for r in self.sweep()}
        errors = []
        for row in PAPER_TABLE2_ROWS:
            key = (row["executors"], row["cores"])
            pred = predicted[key]
            for col in ("load_time_s", "reduce_time_s"):
                errors.append(abs(pred[col] - row[col]) / row[col])
        return float(np.mean(errors))
