"""Tests for repro.data.loader (tensors, one-hot, augmentation, batching)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BatchLoader, augment_batch, augment_pair, image_to_tensor, labels_to_onehot


class TestImageToTensor:
    def test_batch_conversion(self, tiny_dataset):
        x = image_to_tensor(tiny_dataset.images)
        assert x.shape == (len(tiny_dataset), 3, 32, 32)
        assert x.dtype == np.float32
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_single_image(self, rgb_image):
        x = image_to_tensor(rgb_image)
        assert x.shape == (3,) + rgb_image.shape[:2]

    def test_values_scaled(self):
        img = np.full((4, 4, 3), 255, dtype=np.uint8)
        assert np.all(image_to_tensor(img) == 1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            image_to_tensor(np.zeros((4, 4), dtype=np.uint8))


class TestOneHot:
    def test_shape_and_partition(self):
        labels = np.random.default_rng(0).integers(0, 3, size=(2, 8, 8))
        onehot = labels_to_onehot(labels)
        assert onehot.shape == (2, 3, 8, 8)
        np.testing.assert_allclose(onehot.sum(axis=1), 1.0)

    def test_argmax_recovers_labels(self):
        labels = np.random.default_rng(1).integers(0, 3, size=(3, 6, 6))
        np.testing.assert_array_equal(labels_to_onehot(labels).argmax(axis=1), labels)

    def test_single_map(self):
        labels = np.zeros((8, 8), dtype=np.uint8)
        assert labels_to_onehot(labels).shape == (3, 8, 8)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            labels_to_onehot(np.full((2, 2), 7))


class TestAugmentPair:
    def test_image_and_label_stay_aligned(self):
        rng = np.random.default_rng(0)
        label = rng.integers(0, 3, size=(16, 16)).astype(np.int64)
        image = label[None].astype(np.float32).repeat(3, axis=0)  # image encodes the label
        for seed in range(5):
            aug_img, aug_lab = augment_pair(image, label, np.random.default_rng(seed))
            np.testing.assert_array_equal(aug_img[0].astype(np.int64), aug_lab)

    def test_preserves_shapes(self):
        image = np.zeros((3, 8, 8), dtype=np.float32)
        label = np.zeros((8, 8), dtype=np.int64)
        aug_img, aug_lab = augment_pair(image, label, np.random.default_rng(1))
        assert aug_img.shape == image.shape and aug_lab.shape == label.shape

    def test_preserves_class_histogram(self):
        rng = np.random.default_rng(2)
        label = rng.integers(0, 3, size=(12, 12)).astype(np.int64)
        image = np.zeros((3, 12, 12), dtype=np.float32)
        _, aug_lab = augment_pair(image, label, np.random.default_rng(3))
        np.testing.assert_array_equal(np.bincount(aug_lab.ravel(), minlength=3),
                                      np.bincount(label.ravel(), minlength=3))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            augment_pair(np.zeros((3, 8, 8)), np.zeros((6, 6)), np.random.default_rng(0))


class TestAugmentBatch:
    def test_images_and_labels_stay_aligned(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=(6, 16, 16)).astype(np.int64)
        images = labels[:, None].astype(np.float32).repeat(3, axis=1)  # image encodes label
        for seed in range(5):
            img = images.copy()
            lab = labels.copy()
            augment_batch(img, lab, np.random.default_rng(seed))
            np.testing.assert_array_equal(img[:, 0].astype(np.int64), lab)

    def test_preserves_shapes_and_class_histogram(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 3, size=(5, 12, 12)).astype(np.int64)
        images = rng.random((5, 3, 12, 12), dtype=np.float32)
        img, lab = augment_batch(images.copy(), labels.copy(), np.random.default_rng(2))
        assert img.shape == images.shape and lab.shape == labels.shape
        for i in range(labels.shape[0]):
            np.testing.assert_array_equal(np.bincount(lab[i].ravel(), minlength=3),
                                          np.bincount(labels[i].ravel(), minlength=3))

    def test_matches_augment_pair_distribution(self):
        """Batch augmentation draws per-sample transforms: across many samples
        the full dihedral group must show up, not one batch-wide transform."""
        rng = np.random.default_rng(3)
        base = rng.random((1, 4, 4), dtype=np.float32)
        images = np.repeat(base[None], 64, axis=0)
        labels = np.zeros((64, 4, 4), dtype=np.int64)
        img, _ = augment_batch(images.copy(), labels, np.random.default_rng(4))
        distinct = {img[i].tobytes() for i in range(64)}
        # All samples started identical; independent draws must produce
        # several distinct orientations (8 possible, 64 draws).
        assert len(distinct) >= 4

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            augment_batch(np.zeros((2, 3, 8, 8)), np.zeros((3, 8, 8)), np.random.default_rng(0))


class TestBatchLoader:
    def test_iteration_covers_all_samples(self, tiny_dataset):
        loader = BatchLoader(tiny_dataset.images, tiny_dataset.labels, batch_size=3, shuffle=False)
        total = sum(x.shape[0] for x, _ in loader)
        assert total == len(tiny_dataset)
        assert len(loader) == 3  # 8 tiles in batches of 3 -> 3 batches

    def test_drop_last(self, tiny_dataset):
        loader = BatchLoader(tiny_dataset.images, tiny_dataset.labels, batch_size=3, drop_last=True)
        assert len(loader) == 2
        total = sum(x.shape[0] for x, _ in loader)
        assert total == 6

    def test_batch_types(self, tiny_dataset):
        loader = BatchLoader(tiny_dataset.images, tiny_dataset.labels, batch_size=4, shuffle=False)
        x, y = next(iter(loader))
        assert x.dtype == np.float32 and x.shape[1] == 3
        assert y.dtype == np.int64 and y.shape == (4, 32, 32)

    def test_shuffle_changes_order_but_not_content(self, tiny_dataset):
        loader = BatchLoader(tiny_dataset.images, tiny_dataset.labels, batch_size=8, shuffle=True, seed=3)
        x1, y1 = next(iter(loader))
        x2, y2 = next(iter(loader))
        assert np.isclose(np.sort(y1.ravel()).sum(), np.sort(y2.ravel()).sum())

    def test_deterministic_without_shuffle(self, tiny_dataset):
        a = BatchLoader(tiny_dataset.images, tiny_dataset.labels, batch_size=4, shuffle=False)
        b = BatchLoader(tiny_dataset.images, tiny_dataset.labels, batch_size=4, shuffle=False)
        np.testing.assert_array_equal(next(iter(a))[0], next(iter(b))[0])

    def test_augment_does_not_change_class_set(self, tiny_dataset):
        loader = BatchLoader(tiny_dataset.images, tiny_dataset.labels, batch_size=8, augment=True, seed=1)
        _, y = next(iter(loader))
        assert set(np.unique(y)).issubset({0, 1, 2})

    def test_rejects_empty_or_mismatched(self, tiny_dataset):
        with pytest.raises(ValueError):
            BatchLoader(tiny_dataset.images[:0], tiny_dataset.labels[:0])
        with pytest.raises(ValueError):
            BatchLoader(tiny_dataset.images, tiny_dataset.labels[:-1])
        with pytest.raises(ValueError):
            BatchLoader(tiny_dataset.images, tiny_dataset.labels, batch_size=0)
