"""2-D convolution layers (im2col based)."""

from __future__ import annotations

import numpy as np

from .im2col import col2im, conv_output_size, im2col
from .initializers import he_normal, zeros
from .module import Module, Parameter

__all__ = ["Conv2D"]


class Conv2D(Module):
    """2-D convolution over ``(N, C, H, W)`` batches.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of the input and output feature maps.
    kernel_size:
        Square kernel side (the paper's U-Net uses 3×3, 2×2 and 1×1 kernels).
    stride:
        Spatial stride.
    padding:
        Symmetric zero padding; ``"same"`` picks ``kernel_size // 2`` so the
        spatial size is preserved for odd kernels at stride 1 (the paper's
        U-Net keeps tile size constant through each stage).
    use_bias:
        Add a per-output-channel bias.
    seed:
        Seed of the weight initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: "int | str" = "same",
        use_bias: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ValueError("channel counts must be >= 1")
        if kernel_size < 1 or stride < 1:
            raise ValueError("kernel_size and stride must be >= 1")
        if isinstance(padding, str):
            if padding != "same":
                raise ValueError("string padding must be 'same'")
            padding = kernel_size // 2
        if padding < 0:
            raise ValueError("padding must be >= 0")

        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = int(padding)
        self.use_bias = use_bias

        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(he_normal((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng))
        if use_bias:
            self.bias = Parameter(zeros((out_channels,)))

        self._cache: tuple | None = None

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got shape {x.shape}"
            )
        n, _, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = conv_output_size(h, k, s, p)
        out_w = conv_output_size(w, k, s, p)

        if not self.training:
            self._cache = None
            return self._forward_inference(x, out_h, out_w)

        cols = im2col(x, k, k, s, p)  # (N*out_h*out_w, C*k*k)
        w_mat = self.weight.value.reshape(self.out_channels, -1)  # (F, C*k*k)
        out = cols @ w_mat.T  # (N*out_h*out_w, F)
        if self.use_bias:
            out += self.bias.value
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

        # The im2col matrix is only needed to back-propagate; holding it in
        # eval mode pins O(N*H*W*C*k*k) floats per layer, which thrashes the
        # allocator during batched whole-scene inference.
        self._cache = (x.shape, cols)
        return np.ascontiguousarray(out)

    def _forward_inference(self, x: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
        """Inference-only convolution: offset-sliced unroll feeding one GEMM.

        ``im2col`` gathers the unrolled-input matrix elementwise through a
        six-axis transposed view, which dominates forward time.  Here the same
        matrix is assembled in a ``(k*k, C, N, out_h, out_w)`` layout with one
        contiguous slice copy per kernel offset, so the copy runs at memcpy
        speed and the contraction is still a single matrix multiplication.
        Nothing is cached — backward is not available from eval mode.
        """
        n, c = x.shape[0], self.in_channels
        k, s, p = self.kernel_size, self.stride, self.padding
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), mode="constant") if p > 0 else x
        cols = np.empty((k * k, c, n, out_h, out_w), dtype=np.float32)
        for i in range(k):
            for j in range(k):
                src = xp[:, :, i : i + s * out_h : s, j : j + s * out_w : s]
                cols[i * k + j] = src.transpose(1, 0, 2, 3)
        # Weight reordered to (F, k*k*C) to match the (offset, channel) row order.
        w_mat = self.weight.value.transpose(0, 2, 3, 1).reshape(self.out_channels, -1)
        out = w_mat @ cols.reshape(k * k * c, n * out_h * out_w)
        if self.use_bias:
            out += self.bias.value[:, None]
        return np.ascontiguousarray(out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        input_shape, cols = self._cache
        n, _, h, w = input_shape
        k, s, p = self.kernel_size, self.stride, self.padding

        grad = np.asarray(grad_output, dtype=np.float32)
        # (N, F, out_h, out_w) -> (N*out_h*out_w, F)
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)

        w_mat = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat.T @ cols).reshape(self.weight.value.shape)
        if self.use_bias:
            self.bias.grad += grad_mat.sum(axis=0)

        grad_cols = grad_mat @ w_mat  # (N*out_h*out_w, C*k*k)
        return col2im(grad_cols, input_shape, k, k, s, p)
