"""Sea-ice class definitions shared by every subsystem.

The paper classifies each Sentinel-2 pixel as one of three surface types
and annotates them with fixed colours (red / blue / green).  The HSV
threshold ranges quoted in §III-B (OpenCV uint8 convention, hue in
``[0, 179]``) are recorded here verbatim and used both by the auto-labeler
and by the synthetic scene generator so the two stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

__all__ = [
    "SeaIceClass",
    "CLASS_NAMES",
    "NUM_CLASSES",
    "LABEL_COLORS",
    "HSVRange",
    "HSV_RANGES",
    "class_map_to_color",
    "color_to_class_map",
]


class SeaIceClass(IntEnum):
    """Integer ids of the three sea-ice surface types."""

    THICK_ICE = 0
    THIN_ICE = 1
    OPEN_WATER = 2


NUM_CLASSES = 3

CLASS_NAMES: dict[SeaIceClass, str] = {
    SeaIceClass.THICK_ICE: "thick_ice",
    SeaIceClass.THIN_ICE: "thin_ice",
    SeaIceClass.OPEN_WATER: "open_water",
}

#: Label colours used in the paper's annotated figures:
#: red = snow-covered / thick ice, blue = thin or young ice, green = open water.
LABEL_COLORS: dict[SeaIceClass, tuple[int, int, int]] = {
    SeaIceClass.THICK_ICE: (255, 0, 0),
    SeaIceClass.THIN_ICE: (0, 0, 255),
    SeaIceClass.OPEN_WATER: (0, 255, 0),
}


@dataclass(frozen=True)
class HSVRange:
    """Inclusive lower/upper HSV bounds (OpenCV uint8 convention)."""

    lower: tuple[int, int, int]
    upper: tuple[int, int, int]

    def contains(self, hsv: np.ndarray) -> np.ndarray:
        """Boolean mask of pixels inside the range (``hsv`` is ``(H, W, 3)`` uint8)."""
        arr = np.asarray(hsv)
        if arr.ndim != 3 or arr.shape[-1] != 3:
            raise ValueError(f"expected (H, W, 3) HSV image, got shape {arr.shape}")
        lo = np.array(self.lower, dtype=np.int32)
        hi = np.array(self.upper, dtype=np.int32)
        data = arr.astype(np.int32)
        return np.all((data >= lo) & (data <= hi), axis=-1)


#: Auto-labeling colour thresholds from paper §III-B (Ross Sea, Antarctic summer).
HSV_RANGES: dict[SeaIceClass, HSVRange] = {
    SeaIceClass.THICK_ICE: HSVRange(lower=(0, 0, 205), upper=(185, 255, 255)),
    SeaIceClass.THIN_ICE: HSVRange(lower=(0, 0, 31), upper=(185, 255, 204)),
    SeaIceClass.OPEN_WATER: HSVRange(lower=(0, 0, 0), upper=(185, 255, 30)),
}


def class_map_to_color(class_map: np.ndarray) -> np.ndarray:
    """Render an integer class map as the paper's red/blue/green label image."""
    cmap = np.asarray(class_map)
    if cmap.ndim != 2:
        raise ValueError(f"expected 2-D class map, got shape {cmap.shape}")
    lut = np.zeros((NUM_CLASSES, 3), dtype=np.uint8)
    for cls, rgb in LABEL_COLORS.items():
        lut[int(cls)] = rgb
    if cmap.min() < 0 or cmap.max() >= NUM_CLASSES:
        raise ValueError("class map contains ids outside the known classes")
    return lut[cmap.astype(np.intp)]


def color_to_class_map(label_image: np.ndarray) -> np.ndarray:
    """Invert :func:`class_map_to_color` by nearest label colour.

    Useful when round-tripping label images through lossy stores; each pixel
    is assigned the class whose reference colour is closest in RGB space.
    """
    img = np.asarray(label_image)
    if img.ndim != 3 or img.shape[-1] != 3:
        raise ValueError(f"expected (H, W, 3) label image, got shape {img.shape}")
    colors = np.array([LABEL_COLORS[SeaIceClass(i)] for i in range(NUM_CLASSES)], dtype=np.int32)
    diff = img[..., None, :].astype(np.int32) - colors[None, None, :, :]
    dist = np.sum(diff * diff, axis=-1)
    return np.argmin(dist, axis=-1).astype(np.uint8)
