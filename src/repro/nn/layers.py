"""Non-convolutional layers: activations, pooling, up-sampling, dropout, concat.

Together with :class:`~repro.nn.conv.Conv2D` these are all the building
blocks of the paper's U-Net: ReLU after every convolution, 2×2 max-pooling
with stride 2 on the contracting path, 2× up-sampling followed by a 2×2
convolution on the expansive path, dropout between convolutions for
regularisation, and channel concatenation for the skip connections.
"""

from __future__ import annotations

import numpy as np

from .conv import Conv2D
from .module import Module

__all__ = ["ReLU", "MaxPool2D", "UpSample2D", "UpConv2D", "Dropout", "Concat", "BatchNorm2D"]


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training:
            self._mask = None
            return np.maximum(x, 0.0)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad_output, dtype=np.float32)
        return np.where(self._mask, grad, np.float32(0.0))


class MaxPool2D(Module):
    """2×2 (or k×k) max pooling with stride equal to the pool size.

    The default ``"index"`` engine caches one flat argmax index per window
    (uint8 for any realistic pool size) and routes gradients with
    ``put_along_axis``; ties send all gradient to the first maximum in
    row-major window order.  The seed ``"mask"`` engine — which pins a
    full-resolution boolean mask plus a count tensor and splits tied
    gradients evenly — is retained as the reference for parity tests.
    """

    def __init__(self, pool_size: int = 2, engine: str = "index") -> None:
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if engine not in ("index", "mask"):
            raise ValueError("engine must be 'index' or 'mask'")
        self.pool_size = pool_size
        self.engine = engine
        self._cache: tuple | None = None

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """Copy ``(N, C, H, W)`` into ``(N, C, out_h, out_w, k*k)`` windows.

        The copy lands in the shared workspace (the result is consumed within
        the same forward call), so repeated steps reuse warm pages.
        """
        from .im2col import scratch_buffer

        n, c, h, w = x.shape
        k = self.pool_size
        view = x.reshape(n, c, h // k, k, w // k, k).transpose(0, 1, 2, 4, 3, 5)
        windows = scratch_buffer((n, c, h // k, w // k, k, k), slot="pool")
        windows[...] = view
        return windows.reshape(n, c, h // k, w // k, k * k)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        n, c, h, w = x.shape
        k = self.pool_size
        if h % k or w % k:
            raise ValueError(f"spatial size ({h}, {w}) not divisible by pool size {k}")
        reshaped = x.reshape(n, c, h // k, k, w // k, k)
        if not self.training:
            self._cache = None
            return reshaped.max(axis=(3, 5))
        if self.engine == "mask":
            out = reshaped.max(axis=(3, 5))
            # Mask of the argmax positions, used to route gradients back.
            mask = reshaped == out[:, :, :, None, :, None]
            # Break ties (equal maxima in one window) so gradient mass is not duplicated.
            counts = mask.sum(axis=(3, 5), keepdims=True)
            self._cache = ("mask", x.shape, mask, counts)
            return out
        windows = self._windows(x)
        idx = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, idx[..., None], axis=-1)[..., 0]
        dtype = np.uint8 if k * k <= 256 else np.intp
        self._cache = ("index", x.shape, idx.astype(dtype))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        kind, input_shape = self._cache[0], self._cache[1]
        n, c, h, w = input_shape
        k = self.pool_size
        if kind == "index":
            from .im2col import scratch_buffer

            idx = self._cache[2]
            grad = np.asarray(grad_output, dtype=np.float32)
            windows = scratch_buffer((n, c, h // k, w // k, k * k), slot="pool")
            windows.fill(0.0)
            np.put_along_axis(windows, idx[..., None].astype(np.intp), grad[..., None], axis=-1)
            unrolled = windows.reshape(n, c, h // k, w // k, k, k).transpose(0, 1, 2, 4, 3, 5)
            return np.ascontiguousarray(unrolled).reshape(n, c, h, w)
        mask, counts = self._cache[2], self._cache[3]
        grad = np.asarray(grad_output, dtype=np.float32)[:, :, :, None, :, None]
        spread = mask * grad / counts
        return spread.reshape(n, c, h, w)


class UpSample2D(Module):
    """Nearest-neighbour spatial up-sampling by an integer factor."""

    def __init__(self, factor: int = 2) -> None:
        super().__init__()
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = factor
        self._input_shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._input_shape = x.shape
        n, c, h, w = x.shape
        f = self.factor
        # One broadcast copy instead of two chained ``repeat`` materialisations.
        expanded = np.broadcast_to(x[:, :, :, None, :, None], (n, c, h, f, w, f))
        return expanded.reshape(n, c, h * f, w * f)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        f = self.factor
        grad = np.asarray(grad_output, dtype=np.float32)
        return grad.reshape(n, c, h, f, w, f).sum(axis=(3, 5))


class UpConv2D(Module):
    """The paper's "up-convolution": 2× up-sampling followed by a 2×2 convolution
    that halves the number of feature channels.

    A 2×2 kernel cannot be padded symmetrically while preserving spatial size,
    so the up-sampled map is padded by one row/column on the bottom/right
    before the unpadded convolution — the same convention Keras uses for
    ``padding="same"`` with even kernels.
    """

    def __init__(self, in_channels: int, out_channels: int, seed: int = 0) -> None:
        super().__init__()
        self.upsample = UpSample2D(2)
        self.conv = Conv2D(in_channels, out_channels, kernel_size=2, padding=0, seed=seed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        up = self.upsample(x)
        padded = np.pad(up, ((0, 0), (0, 0), (0, 1), (0, 1)), mode="edge")
        return self.conv(padded)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_padded = self.conv.backward(grad_output)
        # Fold the edge-padding gradient back onto the last real row/column.
        grad_up = grad_padded[:, :, :-1, :-1].copy()
        grad_up[:, :, -1, :] += grad_padded[:, :, -1, :-1]
        grad_up[:, :, :, -1] += grad_padded[:, :, :-1, -1]
        grad_up[:, :, -1, -1] += grad_padded[:, :, -1, -1]
        return self.upsample.backward(grad_up)


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval mode."""

    def __init__(self, rate: float = 0.2, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # float32 end to end: draw r ~ U[0, 1), then floor(r + keep) is 1 with
        # probability `keep` — the mask materialises in one pass with no
        # float64 uniforms and no bool intermediate.
        mask = self._rng.random(size=x.shape, dtype=np.float32)
        np.add(mask, np.float32(keep), out=mask)
        np.floor(mask, out=mask)
        mask *= np.float32(1.0 / keep)
        self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float32)
        if self._mask is None:
            return grad
        return grad * self._mask


class Concat(Module):
    """Channel-wise concatenation of two feature maps (U-Net skip connections)."""

    def __init__(self) -> None:
        super().__init__()
        self._split: int | None = None

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:  # type: ignore[override]
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        if a.shape[0] != b.shape[0] or a.shape[2:] != b.shape[2:]:
            raise ValueError(f"cannot concat shapes {a.shape} and {b.shape}")
        self._split = a.shape[1]
        return np.concatenate([a, b], axis=1)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:  # type: ignore[override]
        return self.forward(a, b)

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray, np.ndarray]:  # type: ignore[override]
        if self._split is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad_output, dtype=np.float32)
        return grad[:, : self._split], grad[:, self._split :]


class BatchNorm2D(Module):
    """Per-channel batch normalisation (optional extension to the paper's U-Net)."""

    def __init__(self, num_channels: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        from .module import Parameter  # local import to avoid re-export confusion

        if num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        self.num_channels = num_channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones((num_channels,), dtype=np.float32))
        self.beta = Parameter(np.zeros((num_channels,), dtype=np.float32))
        self.running_mean = np.zeros((num_channels,), dtype=np.float32)
        self.running_var = np.ones((num_channels,), dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(f"expected (N, {self.num_channels}, H, W) input, got {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) / std[None, :, None, None]
        out = self.gamma.value[None, :, None, None] * x_hat + self.beta.value[None, :, None, None]
        self._cache = (x_hat, std) if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std = self._cache
        grad = np.asarray(grad_output, dtype=np.float32)
        n, _, h, w = grad.shape
        m = n * h * w

        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))

        gamma = self.gamma.value[None, :, None, None]
        dxhat = grad * gamma
        # Standard batch-norm backward over the (N, H, W) statistics axes.
        dx = (
            dxhat
            - dxhat.mean(axis=(0, 2, 3), keepdims=True)
            - x_hat * (dxhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        ) / std[None, :, None, None]
        # Correct for using mean over m samples.
        return dx.astype(np.float32) if m else dx
