"""Gradient-descent optimisers (SGD with momentum, Adam).

The paper trains its U-Net with Adam and categorical cross-entropy; SGD is
kept as a baseline and for the distributed-training equivalence tests, which
are easiest to reason about without adaptive state.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser: owns the parameter list and the update rule."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Serialisable optimiser state (overridden by stateful optimisers)."""
        return {"lr": self.lr}


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.value -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2014) — the paper's training optimiser."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {"lr": self.lr, "t": self._t, "beta1": self.beta1, "beta2": self.beta2}
