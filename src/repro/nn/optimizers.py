"""Gradient-descent optimisers (SGD with momentum, Adam).

The paper trains its U-Net with Adam and categorical cross-entropy; SGD is
kept as a baseline and for the distributed-training equivalence tests, which
are easiest to reason about without adaptive state.

``state_dict`` / ``load_state_dict`` round-trip *all* optimiser state —
hyper-parameters and the per-parameter moment/velocity tensors — so a
checkpoint-resumed run continues exactly where it stopped instead of
silently restarting the adaptive state.
"""

from __future__ import annotations

import math

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser: owns the parameter list and the update rule."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Serialisable optimiser state (hyper-parameters + stateful tensors)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state saved by :meth:`state_dict` (inverse operation)."""
        self.lr = float(state["lr"])

    # ------------------------------------------------------------------ #
    def _dump_slots(self, state: dict, name: str, slots: list[np.ndarray]) -> None:
        for i, slot in enumerate(slots):
            state[f"{name}.{i}"] = slot.copy()

    def _load_slots(self, state: dict, name: str, slots: list[np.ndarray]) -> None:
        for i, slot in enumerate(slots):
            key = f"{name}.{i}"
            if key not in state:
                raise KeyError(f"optimizer state missing {key!r}")
            value = np.asarray(state[key])
            if value.shape != slot.shape:
                raise ValueError(f"shape mismatch for {key}: {value.shape} vs {slot.shape}")
            slot[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.value -= self.lr * update

    def state_dict(self) -> dict:
        state = {"lr": self.lr, "momentum": self.momentum, "weight_decay": self.weight_decay}
        self._dump_slots(state, "velocity", self._velocity)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        self._load_slots(state, "velocity", self._velocity)


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2014) — the paper's training optimiser.

    ``step`` is allocation-free: the moments update in place, the bias
    corrections are folded into the scalar step size, and the elementwise
    work runs through one pre-allocated scratch buffer per parameter.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0
        self._scratch: list[np.ndarray] | None = None
        self._grad_scratch: list[np.ndarray] | None = None

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        # param -= lr * (m / bias1) / (sqrt(v / bias2) + eps), with both bias
        # corrections hoisted out of the elementwise work.
        step_size = self.lr / bias1
        inv_sqrt_bias2 = 1.0 / math.sqrt(bias2)
        if self._scratch is None:
            self._scratch = [np.empty_like(p.value) for p in self.parameters]
        if self.weight_decay and self._grad_scratch is None:
            self._grad_scratch = [np.empty_like(p.value) for p in self.parameters]

        for index, (param, m, v, buf) in enumerate(zip(self.parameters, self._m, self._v, self._scratch)):
            grad = param.grad
            if self.weight_decay:
                gbuf = self._grad_scratch[index]
                np.multiply(param.value, self.weight_decay, out=gbuf)
                gbuf += grad
                grad = gbuf
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            m += buf
            v *= self.beta2
            np.multiply(grad, grad, out=buf)
            buf *= 1.0 - self.beta2
            v += buf
            np.sqrt(v, out=buf)
            buf *= inv_sqrt_bias2
            buf += self.eps
            np.divide(m, buf, out=buf)
            buf *= step_size
            param.value -= buf

    def state_dict(self) -> dict:
        state = {
            "lr": self.lr,
            "t": self._t,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
            "weight_decay": self.weight_decay,
        }
        self._dump_slots(state, "m", self._m)
        self._dump_slots(state, "v", self._v)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._t = int(state["t"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._load_slots(state, "m", self._m)
        self._load_slots(state, "v", self._v)
