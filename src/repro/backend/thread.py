"""Thread-pool backend: shared-address-space fan-out without fork.

Threads see the parent's objects directly, so the "model store" is the same
in-process entry the serial backend uses — one model, one compiled-plan
cache, zero copies.  NumPy releases the GIL inside BLAS, so threads overlap
the GEMM-heavy convolution work; for pure-Python task functions this backend
mainly buys I/O overlap.  It is also the fork-less-platform answer to
"fan out without pickling the model".
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from ..reliability import Deadline
from .base import Backend, LocalModelEntry, ModelHandle, _default_chunk_size, record_compute

__all__ = ["ThreadBackend"]


class ThreadBackend(Backend):
    """Dispatches tasks onto a persistent :class:`ThreadPoolExecutor`."""

    name = "thread"

    def __init__(self, num_workers: int = 2) -> None:
        super().__init__(num_workers=num_workers)
        self._models: dict[object, LocalModelEntry] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._busy = 0
        self._busy_lock = threading.Lock()

    def _start(self) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="repro-backend"
        )

    def _close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._models.clear()

    # ------------------------------------------------------------------ #
    def _run(self, fn, *args):
        with self._busy_lock:
            self._busy += 1
        try:
            return fn(*args)
        finally:
            with self._busy_lock:
                self._busy -= 1

    def map(self, fn: Callable, items: Sequence, chunk_size: int | None = None) -> list:
        self._ensure_open()
        items = list(items)
        if not items:
            return []
        if chunk_size is None:
            chunk_size = _default_chunk_size(len(items), self.num_workers)
        chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
        self._count_task(len(chunks))

        def run_chunk(chunk):
            return self._run(lambda: [fn(item) for item in chunk])

        results = []
        for chunk_result in self._pool.map(run_chunk, chunks):
            results.extend(chunk_result)
        return results

    # ------------------------------------------------------------------ #
    def publish_model(self, key, model, cloud_filter=None, *, engine=None,
                      compile_plans: bool = True, plan_cache_size: int = 8,
                      warm_shapes: Sequence[tuple[int, ...]] = ()) -> ModelHandle:
        self._ensure_open()
        entry = LocalModelEntry(key, model, cloud_filter, engine, compile_plans,
                                plan_cache_size, warm_shapes)
        self._models[key] = entry
        return entry.handle

    def release_model(self, key) -> None:
        self._models.pop(key, None)

    def has_model(self, key) -> bool:
        return key in self._models

    def predict(self, key, batch: np.ndarray, deadline: Deadline | None = None) -> np.ndarray:
        self._ensure_open()
        entry = self._models[key]
        if deadline is not None:
            deadline.check("backend predict")
        self._count_task()

        # Time inside the pool thread (where the model runs), report from the
        # calling thread (where the request's trace collector lives).
        def timed():
            start = time.perf_counter()
            result = self._run(entry.predict, batch)
            return result, (time.perf_counter() - start) * 1e3

        result, compute_ms = self._pool.submit(timed).result()
        record_compute(self.name, compute_ms)
        return result

    def predict_stack(self, key, stack: np.ndarray, batch_size: int,
                      copy: bool = True, deadline: Deadline | None = None) -> np.ndarray:
        """Batches run concurrently on the pool; results keep stack order.

        Bit-identical to serial: each batch is the same
        ``predict_batch_probabilities`` call, and distinct batch shapes (the
        remainder batch) compile distinct plans, so concurrent runs never
        share mutable state beyond the plan lock.
        """
        self._ensure_open()
        entry = self._models[key]
        spans = [(start, min(start + batch_size, stack.shape[0]))
                 for start in range(0, stack.shape[0], batch_size)]
        self._count_task(len(spans))
        if deadline is not None:
            deadline.check("backend predict_stack")
        futures = [self._pool.submit(self._run, entry.predict, stack[a:b]) for a, b in spans]
        return np.concatenate([f.result() for f in futures], axis=0)

    def _busy_workers(self) -> int:
        with self._busy_lock:
            return self._busy

    def _model_keys(self) -> list:
        return list(self._models)
