"""Scene-level data-preparation timing workflow.

The paper reports that preparing colour-segmented, thin-cloud/shadow-filtered
auto-labelled data for 66 large 2048×2048 scenes takes 349.26 seconds; this
workflow measures the same end-to-end pipeline (scene → filter → colour
segmentation → tile) for an arbitrary number of synthetic scenes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..data.scene import synthesize_scenes
from ..imops.resize import split_into_tiles
from ..labeling.autolabel import ColorSegmentationLabeler

__all__ = ["PreparationTiming", "run_preparation_pipeline"]


@dataclass
class PreparationTiming:
    """Timing breakdown of the scene-preparation pipeline."""

    num_scenes: int
    scene_size: int
    tile_size: int
    num_tiles: int
    synthesis_s: float
    labeling_s: float
    tiling_s: float
    tile_overlap: int = 0

    @property
    def total_s(self) -> float:
        """End-to-end preparation time (what the paper's 349.26 s measures,
        excluding synthesis which stands in for the GEE download)."""
        return self.labeling_s + self.tiling_s

    def summary(self) -> dict:
        return {
            "num_scenes": self.num_scenes,
            "scene_size": self.scene_size,
            "num_tiles": self.num_tiles,
            "tile_overlap": self.tile_overlap,
            "labeling_s": round(self.labeling_s, 3),
            "tiling_s": round(self.tiling_s, 3),
            "total_s": round(self.total_s, 3),
            "seconds_per_scene": round(self.total_s / max(self.num_scenes, 1), 3),
        }


def run_preparation_pipeline(
    num_scenes: int = 2,
    scene_size: int = 256,
    tile_size: int = 128,
    seed: int = 0,
    overlap: int = 0,
) -> PreparationTiming:
    """Run scene synthesis → cloud/shadow-filtered colour segmentation → tiling.

    The paper-scale call is ``num_scenes=66, scene_size=2048, tile_size=256``.
    ``overlap`` cuts overlapping tiles (stride ``tile_size - overlap``), the
    layout the overlap-blended inference engine consumes.
    """
    start = time.perf_counter()
    scenes = synthesize_scenes(num_scenes, height=scene_size, width=scene_size, base_seed=seed)
    synthesis_s = time.perf_counter() - start

    labeler = ColorSegmentationLabeler(apply_cloud_filter=True)
    start = time.perf_counter()
    label_maps = [labeler(scene.rgb) for scene in scenes]
    labeling_s = time.perf_counter() - start

    start = time.perf_counter()
    num_tiles = 0
    for scene, label_map in zip(scenes, label_maps):
        image_tiles, _ = split_into_tiles(scene.rgb, tile_size, overlap=overlap)
        label_tiles, _ = split_into_tiles(label_map, tile_size, overlap=overlap)
        if image_tiles.shape[0] != label_tiles.shape[0]:
            raise RuntimeError("image and label tiling disagree")
        num_tiles += image_tiles.shape[0]
    tiling_s = time.perf_counter() - start

    return PreparationTiming(
        num_scenes=num_scenes,
        scene_size=scene_size,
        tile_size=tile_size,
        num_tiles=int(num_tiles),
        synthesis_s=synthesis_s,
        labeling_s=labeling_s,
        tiling_s=tiling_s,
        tile_overlap=overlap,
    )
