"""Request queue + micro-batcher: coalesce concurrent tile predictions.

Serving traffic arrives as many independent single-tile requests, but the
NumPy engine is far more efficient predicting one ``(N, H, W, 3)`` batch
than ``N`` separate ``(1, H, W, 3)`` calls — the offset-GEMM forward
amortises its per-call setup (tensor conversion, layer dispatch, softmax)
across the whole batch and runs bigger, better-shaped GEMMs.

The :class:`MicroBatcher` owns a single worker thread and a
``queue.Queue``.  Callers :meth:`submit` a tile and get a
:class:`PendingPrediction` future; the worker drains the queue until either
``max_batch`` requests are waiting or ``max_delay_s`` has passed since the
first one (the classic size-or-deadline trigger), groups the drained tiles
by shape, and runs one batched call per group through the shared prediction
seam (:func:`repro.unet.predict_batch_probabilities`).  Under load the
batches fill up and throughput rises; a lone request only ever waits
``max_delay_s``.
"""

from __future__ import annotations

import inspect
import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs.metrics import get_registry
from ..obs.trace import collector_context
from ..reliability import Deadline, DeadlineExceeded, OverloadedError

__all__ = ["BatcherStats", "MicroBatcher", "PendingPrediction"]

#: Flush-size buckets: powers of two up to the largest ``max_batch`` anyone
#: reasonably configures, so ``bucket_batches`` padding targets land exactly
#: on bucket boundaries.
FLUSH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: ``predict_fn`` contract: ``(N, H, W, 3) uint8 -> (N, K, H, W) float32``.
PredictFn = Callable[[np.ndarray], np.ndarray]


class PendingPrediction:
    """Future-like handle for one submitted tile."""

    __slots__ = ("tile", "deadline", "trace_id", "submitted_at", "timings",
                 "_event", "_result", "_error", "_cancelled")

    def __init__(self, tile: np.ndarray, deadline: Deadline | None = None,
                 trace_id: str | None = None) -> None:
        self.tile = tile
        self.deadline = deadline
        self.trace_id = trace_id
        #: ``time.perf_counter()`` at submit; queue wait = flush start − this.
        self.submitted_at = time.perf_counter()
        #: Per-stage breakdown filled in by the flush that served this tile:
        #: ``queue_wait_ms`` / ``batch_assembly_ms`` / ``dispatch_ms`` /
        #: ``compute_ms`` plus ``batch_size``.  Empty until resolved.
        self.timings: dict = {}
        self._event = threading.Event()
        self._result: np.ndarray | None = None
        self._error: BaseException | None = None
        self._cancelled = False

    def _resolve(self, result: np.ndarray | None, error: BaseException | None = None) -> None:
        self._result = result
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> bool:
        """Abandon the prediction: the flush drops it instead of computing it.

        Returns whether the cancellation landed before a result did.  Without
        this, a caller that times out leaves its tile queued — the batcher
        still spends a full prediction on a result nobody will read.
        """
        if self._event.is_set():
            return False
        self._cancelled = True
        return True

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the prediction is available; re-raises worker errors.

        A timed-out wait cancels the pending work on the way out, so the
        batcher never computes for a caller that already gave up.
        """
        if not self._event.wait(timeout):
            self.cancel()
            raise TimeoutError(f"prediction not ready within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class BatcherStats:
    """Counters for observing how well coalescing (and shedding) works."""

    requests: int = 0
    batches: int = 0
    max_batch_size: int = 0
    cancelled: int = 0
    expired: int = 0
    shed: int = 0
    queue_depth: int = 0
    max_queue: int | None = None

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "cancelled": self.cancelled,
            "expired": self.expired,
            "shed": self.shed,
            "queue_depth": self.queue_depth,
            "max_queue": self.max_queue,
        }


class MicroBatcher:
    """Coalesce concurrent single-tile requests into batched predictions.

    Parameters
    ----------
    predict_fn:
        Batched prediction callable ``(N, H, W, 3) -> (N, K, H, W)``; bind a
        warm model with e.g.
        ``lambda stack: predict_batch_probabilities(stack, model, filt)``.
    max_batch:
        Flush as soon as this many requests are waiting.
    max_delay_s:
        Flush at this age of the oldest waiting request even if the batch is
        not full (the tail-latency bound a lone caller pays).
    bucket_batches:
        Pad every flushed shape group up to the next power of two (capped at
        ``max_batch``) by repeating its last tile, and crop the padded
        predictions away afterwards.  This pins the set of batch shapes the
        predictor ever sees to ``{1, 2, 4, …, max_batch}`` per tile shape, so
        a compiled-plan engine behind ``predict_fn`` stays inside a handful
        of warm plans instead of recompiling (or thrashing its LRU cache)
        for every distinct queue depth.
    max_queue:
        Bound the request queue: past this many waiting tiles, ``submit``
        sheds immediately with :class:`~repro.reliability.OverloadedError`
        instead of queueing work that cannot finish in time.  ``None``
        keeps the queue unbounded.
    """

    def __init__(self, predict_fn: PredictFn, max_batch: int = 8, max_delay_s: float = 0.005,
                 bucket_batches: bool = False, max_queue: int | None = None,
                 name: str = "default") -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        self._predict_fn = predict_fn
        self.name = str(name)
        registry = get_registry()
        self._m_flush_size = registry.histogram(
            "repro_batcher_flush_size",
            "Live requests per flushed micro-batch",
            ("batcher",), buckets=FLUSH_SIZE_BUCKETS,
        )
        self._m_queue_wait = registry.histogram(
            "repro_batcher_queue_wait_ms",
            "Milliseconds a tile waited in the batch queue before its flush",
            ("batcher",),
        )
        self._m_requests = registry.counter(
            "repro_batcher_requests_total",
            "Tiles handled by the batcher, by outcome (served/cancelled/expired/shed)",
            ("batcher", "outcome"),
        )
        # The flush loop's labels never change, so bind them once: hot-path
        # updates skip per-call label validation.
        self._m_flush_size_cell = self._m_flush_size.labels(batcher=self.name)
        self._m_queue_wait_cell = self._m_queue_wait.labels(batcher=self.name)
        self._m_served_cell = self._m_requests.labels(batcher=self.name, outcome="served")
        # Forward per-batch deadlines only to predictors that understand them
        # (the SceneClassifier seam does; a bare lambda in a test need not).
        try:
            self._fn_takes_deadline = "deadline" in inspect.signature(predict_fn).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins etc.
            self._fn_takes_deadline = False
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.bucket_batches = bool(bucket_batches)
        self.max_queue = None if max_queue is None else int(max_queue)
        # +1 slot keeps the close() sentinel enqueueable at high water.
        self._queue: queue.Queue[PendingPrediction | None] = queue.Queue(
            maxsize=0 if self.max_queue is None else self.max_queue + 1
        )
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        self._closed = threading.Event()
        self._close_lock = threading.Lock()
        self._worker = threading.Thread(target=self._run, name="micro-batcher", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(self, tile: np.ndarray, deadline: Deadline | None = None,
               trace_id: str | None = None) -> PendingPrediction:
        """Enqueue one ``(H, W, 3)`` tile; returns a future for its probabilities.

        ``deadline`` rides along with the tile: entries that expire while
        queued are dropped at flush time (the caller's ``result()`` raises
        :class:`~repro.reliability.DeadlineExceeded`) instead of computed.
        ``trace_id`` (if any) rides along too and is forwarded to the
        backend dispatch for its served group.  Raises
        :class:`~repro.reliability.OverloadedError` when the queue is at
        ``max_queue``.
        """
        if self._closed.is_set():
            raise RuntimeError("MicroBatcher is closed")
        arr = np.asarray(tile)
        if arr.ndim != 3 or arr.shape[-1] != 3:
            raise ValueError(f"expected one (H, W, 3) tile, got shape {arr.shape}")
        pending = PendingPrediction(arr, deadline=deadline, trace_id=trace_id)
        try:
            if self.max_queue is not None and self._queue.qsize() >= self.max_queue:
                raise queue.Full
            self._queue.put_nowait(pending)
        except queue.Full:
            with self._stats_lock:
                self._stats.shed += 1
            self._m_requests.inc(batcher=self.name, outcome="shed")
            raise OverloadedError(
                f"batcher queue full ({self.max_queue} tiles waiting); request shed"
            ) from None
        return pending

    def predict(self, tile: np.ndarray, timeout: float | None = 60.0) -> np.ndarray:
        """Synchronous convenience: submit one tile and wait for its ``(K, H, W)`` map."""
        deadline = Deadline(timeout) if timeout is not None else None
        return self.submit(tile, deadline=deadline).result(timeout)

    def stats(self) -> BatcherStats:
        with self._stats_lock:
            return BatcherStats(
                requests=self._stats.requests,
                batches=self._stats.batches,
                max_batch_size=self._stats.max_batch_size,
                cancelled=self._stats.cancelled,
                expired=self._stats.expired,
                shed=self._stats.shed,
                queue_depth=self._queue.qsize(),
                max_queue=self.max_queue,
            )

    def flush_size_histogram(self) -> dict:
        """Bucketed snapshot of live-requests-per-flush for this batcher (``/stats``)."""
        return self._m_flush_size.snapshot(batcher=self.name)

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop accepting work, drain what is queued, and join the worker.

        Idempotent and thread-safe: concurrent retirement paths (a registry
        hot-swap racing an LRU eviction) may both close the same batcher, and
        exactly one of them enqueues the shutdown sentinel.
        """
        with self._close_lock:
            if not self._closed.is_set():
                self._closed.set()
                try:
                    self._queue.put_nowait(None)
                except queue.Full:  # pragma: no cover - bounded queue at limit
                    pass  # the worker's closed-flag poll path still exits
        self._worker.join(timeout)
        # A submit() that raced past the closed-check may have enqueued behind
        # the shutdown sentinel; fail those immediately instead of letting the
        # callers sit in result() until their timeout.  Only drain once the
        # worker has really exited — while it is still flushing a backlog the
        # queued items ahead of the sentinel are its to serve, not ours.
        if self._worker.is_alive():
            return
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not None:
                leftover._resolve(None, RuntimeError("MicroBatcher closed before prediction"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._closed.is_set():
                    return
                continue
            if first is None:
                return
            batch = [first]
            deadline = time.monotonic() + self.max_delay_s
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is None:
                    stop = True
                    break
                batch.append(item)
            self._flush(batch)
            if stop:
                return

    def _flush(self, batch: list[PendingPrediction]) -> None:
        flush_start = time.perf_counter()
        # Shed dead weight before compute: entries whose caller cancelled
        # (timed out and left) or whose deadline expired while queued would
        # burn a full prediction on a result nobody reads.
        live: list[PendingPrediction] = []
        cancelled = 0
        expired = 0
        for pending in batch:
            if pending._cancelled:
                cancelled += 1
                pending._resolve(None, RuntimeError("prediction cancelled by caller"))
            elif pending.deadline is not None and pending.deadline.expired:
                expired += 1
                try:
                    pending.deadline.check("batch queue")
                except DeadlineExceeded as exc:
                    pending._resolve(None, exc)
            else:
                live.append(pending)
        with self._stats_lock:
            self._stats.cancelled += cancelled
            self._stats.expired += expired
            if live:
                self._stats.requests += len(live)
                self._stats.batches += 1
                self._stats.max_batch_size = max(self._stats.max_batch_size, len(live))
        if cancelled:
            self._m_requests.inc(cancelled, batcher=self.name, outcome="cancelled")
        if expired:
            self._m_requests.inc(expired, batcher=self.name, outcome="expired")
        if not live:
            return
        self._m_flush_size_cell.observe(len(live))
        groups: dict[tuple[int, ...], list[PendingPrediction]] = {}
        for pending in live:
            groups.setdefault(pending.tile.shape, []).append(pending)
        for group in groups.values():
            # The stage collector rides this thread into the prediction seam:
            # whichever backend serves the group records its ``compute_ms``
            # here (the fork backend forwards the group's trace id to the
            # worker and records the worker-measured time from reply meta).
            collector: dict = {}
            group_trace = next((p.trace_id for p in group if p.trace_id is not None), None)
            predict_start = flush_start
            try:
                tiles = [p.tile for p in group]
                target = len(tiles)
                if self.bucket_batches:
                    target = min(1 << (len(tiles) - 1).bit_length(), self.max_batch)
                    tiles = tiles + [tiles[-1]] * (target - len(tiles))
                stack = np.stack(tiles)
                predict_start = time.perf_counter()
                with collector_context(collector, group_trace):
                    if self._fn_takes_deadline:
                        # The batch must finish for its longest-lived entry, so
                        # the *latest* expiry governs; any unbounded entry makes
                        # the whole batch unbounded.
                        deadlines = [p.deadline for p in group]
                        batch_deadline = None
                        if all(d is not None for d in deadlines):
                            batch_deadline = max(
                                deadlines,
                                key=lambda d: (d.expires_at is None, d.expires_at or 0.0),
                            )
                        probs = self._predict_fn(stack, deadline=batch_deadline)
                    else:
                        probs = self._predict_fn(stack)
                dispatch_total_ms = (time.perf_counter() - predict_start) * 1e3
                if probs.shape[0] != target:
                    raise RuntimeError(
                        f"predict_fn returned {probs.shape[0]} maps for {target} tiles"
                    )
            except BaseException as exc:  # noqa: BLE001 - delivered to the caller
                for pending in group:
                    pending._resolve(None, exc)
                continue
            # Decompose the predict call: ``compute_ms`` is what the innermost
            # layer measured (worker process, pool thread, or inline engine);
            # the rest of the call is dispatch overhead (message framing,
            # pickling, pool hops).  Assembly is the pre-call flush work.
            assembly_ms = (predict_start - flush_start) * 1e3
            compute_ms = float(collector.get("compute_ms", 0.0))
            dispatch_ms = max(0.0, dispatch_total_ms - compute_ms)
            self._m_served_cell.inc(len(group))
            for pending, prob in zip(group, probs):
                queue_wait_ms = (flush_start - pending.submitted_at) * 1e3
                self._m_queue_wait_cell.observe(queue_wait_ms)
                pending.timings = {
                    "queue_wait_ms": queue_wait_ms,
                    "batch_assembly_ms": assembly_ms,
                    "dispatch_ms": dispatch_ms,
                    "compute_ms": compute_ms,
                    "batch_size": len(group),
                }
                # Copy, not a view: a slice of the batch output would pin the
                # whole (N, K, H, W) array alive for as long as any single
                # caller keeps its map.
                pending._resolve(np.array(prob))
