"""Quickstart: generate a synthetic Sentinel-2 scene, filter clouds, auto-label it,
train a small U-Net on the auto-labels and classify the scene.

Run with:  python examples/quickstart.py
(Finishes in well under a minute on a laptop CPU.)
"""

from __future__ import annotations

import numpy as np

from repro.classes import CLASS_NAMES, SeaIceClass
from repro.cloudshadow import CloudShadowFilter
from repro.data import BatchLoader, build_dataset, train_test_split
from repro.labeling import ColorSegmentationLabeler
from repro.metrics import accuracy_score, ssim
from repro.unet import InferenceConfig, SceneClassifier, UNetConfig, UNetTrainer


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Data: a small synthetic archive of Ross-Sea-like scenes cut into tiles.
    # ------------------------------------------------------------------ #
    print("1. generating a synthetic Sentinel-2 tile archive ...")
    dataset = build_dataset(num_scenes=4, scene_size=128, tile_size=32, base_seed=11, cloudy_fraction=0.5)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
    print(f"   {len(dataset)} tiles ({len(train)} train / {len(test)} test), "
          f"class distribution {np.round(dataset.class_distribution(), 2)}")

    # ------------------------------------------------------------------ #
    # 2. Thin-cloud / shadow filtering and HSV colour-segmentation auto-labeling.
    # ------------------------------------------------------------------ #
    print("2. auto-labeling the training tiles (cloud/shadow filter + colour segmentation) ...")
    cloud_filter = CloudShadowFilter()
    labeler = ColorSegmentationLabeler(apply_cloud_filter=True, cloud_filter=cloud_filter)
    auto_labels = labeler.label_batch(train.images)
    agreement = accuracy_score(train.labels, auto_labels)
    print(f"   auto-label agreement with ground truth: {agreement * 100:.2f}%")

    # ------------------------------------------------------------------ #
    # 3. Train a small U-Net on the auto-labeled tiles.
    # ------------------------------------------------------------------ #
    print("3. training a U-Net on the auto-labeled tiles ...")
    trainer = UNetTrainer(config=UNetConfig(depth=3, base_channels=12, dropout=0.1, seed=1), learning_rate=2e-3)
    loader = BatchLoader(cloud_filter.apply_batch(train.images), auto_labels, batch_size=8, augment=True, seed=0)
    history = trainer.fit(loader, epochs=20, verbose=False)
    print(f"   final training loss: {history.losses[-1]:.3f} "
          f"({history.mean_throughput:.0f} tiles/s on this machine)")

    # ------------------------------------------------------------------ #
    # 4. Evaluate against the held-out ground truth (manual-label stand-in).
    # ------------------------------------------------------------------ #
    report = trainer.evaluate(
        cloud_filter.apply_batch(test.images),
        test.labels,
        class_names=[CLASS_NAMES[SeaIceClass(i)] for i in range(3)],
    )
    print("4. held-out evaluation (cloud/shadow-filtered test tiles):")
    print("   " + str(report).replace("\n", "\n   "))

    # ------------------------------------------------------------------ #
    # 5. Classify a whole scene with the inference workflow of Figure 9.
    # ------------------------------------------------------------------ #
    from repro.data import SceneSpec, synthesize_scene

    scene = synthesize_scene(SceneSpec(height=128, width=128, cloud_coverage=0.3, seed=77))
    classifier = SceneClassifier(model=trainer.model,
                                 config=InferenceConfig(tile_size=32, apply_cloud_filter=True))
    prediction = classifier.classify_scene(scene.rgb)
    print("5. whole-scene inference on a fresh cloudy scene:")
    print(f"   scene accuracy {accuracy_score(scene.class_map, prediction) * 100:.2f}%, "
          f"label-map SSIM {ssim(prediction.astype(np.uint8) * 100, scene.class_map.astype(np.uint8) * 100):.3f}")


if __name__ == "__main__":
    main()
