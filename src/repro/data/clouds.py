"""Synthetic thin-cloud and cloud-shadow fields.

Thin clouds and their shadows are the main confounder the paper's filter
removes.  Both are modelled as smooth opacity fields: a low-frequency
spectral-noise field is thresholded to place a bank, a smooth ramp controls
the opacity inside the bank, and the shadow bank is a translated copy of the
cloud bank (shadows fall a sun-dependent offset away from the cloud that
casts them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .noise import spectral_noise

__all__ = ["CloudShadowField", "generate_cloud_field", "generate_cloud_shadow_pair"]


@dataclass
class CloudShadowField:
    """Per-pixel opacity of the thin-cloud veil and the shadow veil."""

    cloud_alpha: np.ndarray
    shadow_alpha: np.ndarray

    @property
    def cloud_mask(self) -> np.ndarray:
        """Boolean mask of pixels with non-negligible cloud opacity."""
        return self.cloud_alpha > 0.02

    @property
    def shadow_mask(self) -> np.ndarray:
        """Boolean mask of pixels with non-negligible shadow opacity."""
        return self.shadow_alpha > 0.02

    @property
    def affected_mask(self) -> np.ndarray:
        """Pixels affected by either clouds or shadows."""
        return self.cloud_mask | self.shadow_mask

    @property
    def affected_fraction(self) -> float:
        """Fraction of the image affected by clouds or shadows (Table V split key)."""
        return float(self.affected_mask.mean())


def generate_cloud_field(
    shape: tuple[int, int],
    coverage: float,
    max_opacity: float = 0.55,
    beta: float = 3.5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate one smooth opacity field covering about ``coverage`` of the image.

    The field is zero outside the bank and ramps smoothly up to at most
    ``max_opacity`` inside it, so veil edges are diffuse as for real thin
    clouds.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")
    if not 0.0 <= max_opacity <= 0.95:
        raise ValueError("max_opacity must be in [0, 0.95]")
    rng = rng or np.random.default_rng()
    if coverage == 0.0 or max_opacity == 0.0:
        return np.zeros(shape, dtype=np.float64)

    field = spectral_noise(shape, beta=beta, rng=rng)
    cut = np.quantile(field, 1.0 - coverage)
    # Smooth ramp from the threshold to the field maximum; the 0.45 exponent
    # keeps the bank interior close to peak opacity with diffuse edges.
    excess = np.clip(field - cut, 0.0, None)
    peak = excess.max()
    if peak <= 0:
        return np.zeros(shape, dtype=np.float64)
    alpha = max_opacity * (excess / peak) ** 0.45
    return np.clip(alpha, 0.0, max_opacity)


def generate_cloud_shadow_pair(
    shape: tuple[int, int],
    cloud_coverage: float,
    shadow_coverage: float | None = None,
    cloud_max_opacity: float = 0.55,
    shadow_max_opacity: float = 0.55,
    shadow_offset: tuple[int, int] | None = None,
    rng: np.random.Generator | None = None,
) -> CloudShadowField:
    """Generate a consistent cloud / shadow opacity pair.

    The shadow field is the cloud field translated by ``shadow_offset``
    (default: a random offset of roughly 1/6 of the image diagonal) and
    lightly re-smoothed, mimicking the projection geometry of a low sun.
    If ``shadow_coverage`` is given the shadow field is generated
    independently instead (some tiles in real scenes contain shadows whose
    clouds lie outside the tile).
    """
    rng = rng or np.random.default_rng()
    cloud = generate_cloud_field(shape, cloud_coverage, cloud_max_opacity, rng=rng)

    if shadow_coverage is not None:
        shadow = generate_cloud_field(shape, shadow_coverage, shadow_max_opacity, rng=rng)
    else:
        if shadow_offset is None:
            span = max(shape) // 6 or 1
            shadow_offset = (int(rng.integers(-span, span + 1)), int(rng.integers(-span, span + 1)))
        shadow = np.roll(cloud, shift=shadow_offset, axis=(0, 1))
        if shadow.any():
            shadow = ndimage.gaussian_filter(shadow, sigma=max(shape) / 100.0 + 1.0)
            peak = shadow.max()
            if peak > 0:
                shadow = shadow / peak * shadow_max_opacity

    # Where cloud and shadow overlap the cloud dominates what the sensor sees.
    shadow = np.where(cloud > 0.05, shadow * 0.3, shadow)
    return CloudShadowField(cloud_alpha=cloud, shadow_alpha=np.clip(shadow, 0.0, shadow_max_opacity))
