"""Figure 11 / §IV-B.2 — colour-segmentation auto-labeling accuracy (SSIM).

Paper result: the auto-labeled maps reach 89 % SSIM against the manual labels
on the original imagery and 99.64 % after thin-cloud/shadow filtering; the
qualitative panels of Figure 11 show the segmentation errors disappearing in
the cloudy/shadowy areas once the filter is applied.
"""

from __future__ import annotations

import pytest

from repro.workflow import AutoLabelWorkflow, AutoLabelWorkflowConfig

from conftest import print_paper_vs_measured

PAPER_SSIM = [
    {"images": "original", "ssim_pct": 89.0},
    {"images": "cloud/shadow filtered", "ssim_pct": 99.64},
]


@pytest.mark.benchmark(group="fig11")
def test_fig11_autolabel_ssim_with_and_without_filter(benchmark, bench_dataset):
    unfiltered_workflow = AutoLabelWorkflow(AutoLabelWorkflowConfig(backend="serial", apply_cloud_filter=False))
    filtered_workflow = AutoLabelWorkflow(AutoLabelWorkflowConfig(backend="serial", apply_cloud_filter=True))

    unfiltered = unfiltered_workflow.run(bench_dataset)

    def run_filtered():
        return filtered_workflow.run(bench_dataset, manual_labels=unfiltered.manual_labels)

    filtered = benchmark.pedantic(run_filtered, rounds=1, iterations=1)

    measured = [
        {
            "images": "original",
            "ssim_pct": round(unfiltered.ssim_vs_manual * 100, 2),
            "pixel_agreement_pct": round(unfiltered.pixel_agreement * 100, 2),
        },
        {
            "images": "cloud/shadow filtered",
            "ssim_pct": round(filtered.ssim_vs_manual * 100, 2),
            "pixel_agreement_pct": round(filtered.pixel_agreement * 100, 2),
        },
    ]
    print_paper_vs_measured("Fig 11 / SSIM: auto-label vs manual label similarity", PAPER_SSIM, measured)

    # Shape: the filter improves both SSIM and per-pixel agreement, and the
    # filtered labels are close to the manual labels.
    assert filtered.ssim_vs_manual > unfiltered.ssim_vs_manual
    assert filtered.pixel_agreement > unfiltered.pixel_agreement
    assert filtered.pixel_agreement > 0.85
