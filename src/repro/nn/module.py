"""Base module system of the NumPy deep-learning framework.

A :class:`Module` owns named parameters (and their gradients), can contain
child modules, and implements ``forward`` / ``backward``.  The design is a
layer-wise reverse-mode framework: each layer caches what it needs during
``forward`` and returns ``dL/dinput`` from ``backward`` while accumulating
``dL/dparam`` — sufficient for feed-forward architectures such as U-Net and
much simpler (and faster in NumPy) than a full tape-based autograd.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


def _array_nbytes(obj) -> int:
    """Total bytes of every ndarray reachable through obj (arrays, tuples, lists)."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_array_nbytes(item) for item in obj)
    return 0


class Parameter:
    """A trainable array with its gradient accumulator."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.value.shape}, dtype={self.value.dtype})"


class Module:
    """Base class of all layers and models."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        if not isinstance(param, Parameter):
            raise TypeError("register_parameter expects a Parameter")
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        if not isinstance(module, Module):
            raise TypeError("register_module expects a Module")
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        # Auto-register parameters and sub-modules assigned as attributes.
        if isinstance(value, Parameter):
            object.__getattribute__(self, "_parameters")[name] = value
        elif isinstance(value, Module):
            object.__getattribute__(self, "_modules")[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> "OrderedDict[str, Parameter]":
        """All parameters of this module and its children, keyed by dotted path."""
        out: "OrderedDict[str, Parameter]" = OrderedDict()
        for name, param in self._parameters.items():
            out[f"{prefix}{name}"] = param
        for mod_name, module in self._modules.items():
            out.update(module.named_parameters(prefix=f"{prefix}{mod_name}."))
        return out

    def parameters(self) -> list[Parameter]:
        return list(self.named_parameters().values())

    def modules(self) -> list["Module"]:
        """This module plus all descendants, depth first."""
        out: list[Module] = [self]
        for module in self._modules.values():
            out.extend(module.modules())
        return out

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def cache_nbytes(self, recurse: bool = True) -> int:
        """Bytes currently pinned by backward caches (``_``-prefixed ndarray state).

        Counts every ndarray reachable through private attributes — the
        convention all layers use for forward-to-backward state (``_cache``,
        ``_mask``, ``_skips``, …) — excluding parameters and child modules.
        This is the number the training-throughput benchmark tracks per layer.
        """
        total = 0
        for name, value in self.__dict__.items():
            if not name.startswith("_") or name in ("_parameters", "_modules"):
                continue
            total += _array_nbytes(value)
        if recurse:
            for module in self._modules.values():
                total += module.cache_nbytes()
        return total

    # ------------------------------------------------------------------ #
    # Training state
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        """Switch to training mode (enables dropout, batch-norm statistics updates)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch to inference mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Weight I/O
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter value keyed by dotted path."""
        return {name: param.value.copy() for name, param in self.named_parameters().items()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict` (strict key/shape match)."""
        params = self.named_parameters()
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.value.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.value.shape}")
            param.value[...] = value

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """A linear chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(self.layers):
            self.register_module(str(index), layer)

    def append(self, layer: Module) -> None:
        self.register_module(str(len(self.layers)), layer)
        self.layers.append(layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
