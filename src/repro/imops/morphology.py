"""Binary and grayscale morphology (erode, dilate, open, close).

Used to clean up the cloud / shadow masks produced by thresholding before
they are used to correct the underlying Sentinel-2 pixels.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "structuring_element",
    "erode",
    "dilate",
    "morph_open",
    "morph_close",
    "remove_small_objects",
    "fill_holes",
]


def structuring_element(shape: str = "rect", ksize: int = 3) -> np.ndarray:
    """Return a boolean structuring element.

    Parameters
    ----------
    shape:
        ``"rect"`` (full square), ``"cross"`` or ``"ellipse"``.
    ksize:
        Side length of the element (odd, >= 1).
    """
    if ksize < 1 or ksize % 2 == 0:
        raise ValueError("ksize must be a positive odd integer")
    if shape == "rect":
        return np.ones((ksize, ksize), dtype=bool)
    if shape == "cross":
        elem = np.zeros((ksize, ksize), dtype=bool)
        mid = ksize // 2
        elem[mid, :] = True
        elem[:, mid] = True
        return elem
    if shape == "ellipse":
        yy, xx = np.mgrid[:ksize, :ksize]
        center = (ksize - 1) / 2.0
        radius = ksize / 2.0
        return ((yy - center) ** 2 + (xx - center) ** 2) <= radius**2
    raise ValueError(f"unknown structuring element shape {shape!r}")


def _morph(image: np.ndarray, footprint: np.ndarray, op: str) -> np.ndarray:
    img = np.asarray(image)
    if img.ndim != 2:
        raise ValueError(f"morphology expects a 2-D image, got shape {img.shape}")
    binary = img.dtype == bool or set(np.unique(img)).issubset({0, 1, 255})
    if binary:
        data = img.astype(bool)
        if op == "erode":
            out = ndimage.binary_erosion(data, structure=footprint)
        else:
            out = ndimage.binary_dilation(data, structure=footprint)
        if img.dtype == bool:
            return out
        return (out * (255 if img.max() > 1 else 1)).astype(img.dtype)
    # Grayscale morphology.
    if op == "erode":
        return ndimage.grey_erosion(img, footprint=footprint).astype(img.dtype)
    return ndimage.grey_dilation(img, footprint=footprint).astype(img.dtype)


def erode(image: np.ndarray, ksize: int = 3, shape: str = "rect", iterations: int = 1) -> np.ndarray:
    """Morphological erosion (shrinks bright / foreground regions)."""
    footprint = structuring_element(shape, ksize)
    out = np.asarray(image)
    for _ in range(max(1, iterations)):
        out = _morph(out, footprint, "erode")
    return out


def dilate(image: np.ndarray, ksize: int = 3, shape: str = "rect", iterations: int = 1) -> np.ndarray:
    """Morphological dilation (grows bright / foreground regions)."""
    footprint = structuring_element(shape, ksize)
    out = np.asarray(image)
    for _ in range(max(1, iterations)):
        out = _morph(out, footprint, "dilate")
    return out


def morph_open(image: np.ndarray, ksize: int = 3, shape: str = "rect") -> np.ndarray:
    """Opening = erosion followed by dilation; removes small bright specks."""
    return dilate(erode(image, ksize, shape), ksize, shape)


def morph_close(image: np.ndarray, ksize: int = 3, shape: str = "rect") -> np.ndarray:
    """Closing = dilation followed by erosion; fills small dark gaps."""
    return erode(dilate(image, ksize, shape), ksize, shape)


def remove_small_objects(mask: np.ndarray, min_size: int = 16) -> np.ndarray:
    """Drop connected components smaller than ``min_size`` pixels from a binary mask."""
    m = np.asarray(mask).astype(bool)
    labeled, num = ndimage.label(m)
    if num == 0:
        return np.zeros_like(m) if mask.dtype == bool else np.zeros_like(np.asarray(mask))
    sizes = ndimage.sum(m, labeled, index=np.arange(1, num + 1))
    keep = np.zeros(num + 1, dtype=bool)
    keep[1:] = sizes >= min_size
    out = keep[labeled]
    if np.asarray(mask).dtype == bool:
        return out
    return (out * (255 if np.asarray(mask).max() > 1 else 1)).astype(np.asarray(mask).dtype)


def fill_holes(mask: np.ndarray) -> np.ndarray:
    """Fill enclosed holes in a binary mask."""
    m = np.asarray(mask).astype(bool)
    out = ndimage.binary_fill_holes(m)
    if np.asarray(mask).dtype == bool:
        return out
    return (out * (255 if np.asarray(mask).max() > 1 else 1)).astype(np.asarray(mask).dtype)
