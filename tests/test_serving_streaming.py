"""Tests for the row-band streaming scene classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import StreamingSceneClassifier
from repro.unet import InferenceConfig, SceneClassifier, UNet, UNetConfig


@pytest.fixture(scope="module")
def model():
    return UNet(UNetConfig(depth=2, base_channels=6, dropout=0.0, seed=13))


def _scene(shape, seed=0):
    return np.random.default_rng(seed).integers(0, 255, size=shape + (3,), dtype=np.uint8)


class TestStreamingMatchesWholeScene:
    @pytest.mark.parametrize(
        "shape, tile, overlap, batch",
        [
            ((96, 128), 32, 0, 4),     # disjoint grid
            ((96, 128), 32, 8, 4),     # blended grid
            ((100, 140), 32, 16, 3),   # non-divisible scene, heavy overlap
            ((97, 65), 32, 31, 2),     # maximal overlap
            ((20, 20), 32, 8, 8),      # scene smaller than one tile
            ((33, 1), 32, 0, 8),       # 1-pixel-wide degenerate scene
            ((128, 48), 32, 8, 1),     # batch size 1
        ],
    )
    def test_bit_identical_argmax(self, model, shape, tile, overlap, batch):
        scene = _scene(shape, seed=tile + overlap)
        config = InferenceConfig(tile_size=tile, overlap=overlap,
                                 apply_cloud_filter=False, batch_size=batch)
        whole = SceneClassifier(model=model, config=config).classify_scene(scene)
        streamed = StreamingSceneClassifier(model=model, config=config).classify_scene(scene)
        np.testing.assert_array_equal(streamed, whole)

    def test_with_cloud_filter(self, model):
        scene = _scene((64, 96), seed=5)
        config = InferenceConfig(tile_size=32, overlap=8, apply_cloud_filter=True, batch_size=4)
        whole = SceneClassifier(model=model, config=config).classify_scene(scene)
        streamed = StreamingSceneClassifier(model=model, config=config).classify_scene(scene)
        np.testing.assert_array_equal(streamed, whole)


class TestStreamingMechanics:
    def test_bands_tile_the_scene_exactly(self, model):
        scene = _scene((100, 70), seed=2)
        config = InferenceConfig(tile_size=32, overlap=8, apply_cloud_filter=False, batch_size=4)
        streamer = StreamingSceneClassifier(model=model, config=config)
        covered = np.zeros(scene.shape[:2], dtype=int)
        starts = []
        for y0, rows in streamer.iter_row_bands(scene):
            assert rows.dtype == np.uint8
            assert rows.shape[1] == scene.shape[1]
            covered[y0 : y0 + rows.shape[0]] += 1
            starts.append(y0)
        assert starts == sorted(starts)
        np.testing.assert_array_equal(covered, 1)  # every row exactly once

    def test_classify_to_memmap_output(self, model, tmp_path):
        """Both ends of the pipeline can live off-heap."""
        scene = _scene((64, 48), seed=3)
        config = InferenceConfig(tile_size=32, overlap=8, apply_cloud_filter=False, batch_size=4)
        source = np.memmap(tmp_path / "scene.dat", dtype=np.uint8, mode="w+", shape=scene.shape)
        source[:] = scene
        out = np.memmap(tmp_path / "out.dat", dtype=np.uint8, mode="w+", shape=scene.shape[:2])
        streamer = StreamingSceneClassifier(model=model, config=config)
        result = streamer.classify_to(source, out)
        expected = SceneClassifier(model=model, config=config).classify_scene(scene)
        np.testing.assert_array_equal(np.asarray(result), expected)

    def test_peak_buffer_is_bounded_by_band_not_scene(self, model):
        """Growing the scene height must not grow the streaming buffer."""
        config = InferenceConfig(tile_size=32, overlap=8, apply_cloud_filter=False, batch_size=4)
        streamer = StreamingSceneClassifier(model=model, config=config)
        streamer.classify_scene(_scene((128, 64), seed=1))
        short_peak = streamer.peak_buffer_bytes
        assert short_peak > 0
        streamer.classify_scene(_scene((512, 64), seed=1))
        tall_peak = streamer.peak_buffer_bytes
        assert tall_peak == short_peak

    def test_scene_larger_than_band_buffer(self, model):
        """The acceptance-criteria shape: scene ≥ 4x the streaming buffer."""
        config = InferenceConfig(tile_size=16, overlap=4, apply_cloud_filter=False, batch_size=4)
        scene = _scene((1280, 96), seed=8)
        streamer = StreamingSceneClassifier(model=model, config=config)
        streamed = streamer.classify_scene(scene)
        assert scene.nbytes >= 4 * streamer.peak_buffer_bytes
        whole = SceneClassifier(model=model, config=config).classify_scene(scene)
        np.testing.assert_array_equal(streamed, whole)

    def test_rejects_bad_scene(self, model):
        streamer = StreamingSceneClassifier(model=model)
        with pytest.raises(ValueError, match=r"\(H, W, 3\)"):
            streamer.classify_scene(np.zeros((32, 32), dtype=np.uint8))
        with pytest.raises(ValueError, match="output shape"):
            streamer.classify_to(np.zeros((32, 32, 3), dtype=np.uint8),
                                 np.zeros((16, 16), dtype=np.uint8))
